#ifndef UFIM_COMMON_THREAD_POOL_H_
#define UFIM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/run_context.h"
#include "common/thread_annotations.h"

namespace ufim {

/// Number of hardware threads, clamped to at least 1 (the standard
/// permits std::thread::hardware_concurrency() == 0).
std::size_t HardwareThreads();

namespace internal {

/// A Chase-Lev work-stealing deque of task pointers (Le, Pop, Cohen &
/// Nardelli, PPoPP'13 memory orderings). Exactly one thread — the slot
/// owner — may Push/Pop at the bottom (LIFO); any thread may Steal from
/// the top (FIFO). The buffer grows geometrically; retired buffers are
/// kept alive until destruction because a concurrent thief may still be
/// reading one (its CAS on `top_` then decides who owns the element).
///
/// The owner/thief split is machine-checked: `owner_role_` is a pure
/// role capability (see thread_annotations.h), `Push`/`Pop` require it,
/// and the slot-routing code in TaskGroupImpl claims it via
/// `AssertOwner()` exactly where the participation stack proves this
/// thread holds the slot. Calling `Push`/`Pop` from any path without
/// that claim fails the `-Wthread-safety` build; `Steal` is
/// deliberately unannotated — any thread may race for the top end.
class TaskDeque {
 public:
  TaskDeque();
  ~TaskDeque();

  TaskDeque(const TaskDeque&) = delete;
  TaskDeque& operator=(const TaskDeque&) = delete;

  /// Owner only. Pushes onto the bottom, growing the buffer if full.
  void Push(void* task) UFIM_REQUIRES(owner_role_);

  /// Owner only. Pops from the bottom (most recently pushed first);
  /// nullptr when empty.
  void* Pop() UFIM_REQUIRES(owner_role_);

  /// Any thread. Steals from the top (oldest first); nullptr when empty
  /// or when the race for the element was lost (callers just rescan).
  void* Steal();

  /// Claims the owner role to the thread-safety analysis (no runtime
  /// effect). Callers invoke it at the point where the scheduling
  /// protocol designates this thread the slot owner — in this codebase,
  /// where the thread-local participation stack maps the calling thread
  /// to this deque's slot.
  void AssertOwner() const UFIM_ASSERT_CAPABILITY(owner_role_) {}

 private:
  struct Buffer;

  void Grow(std::int64_t top, std::int64_t bottom)
      UFIM_REQUIRES(owner_role_);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  /// Superseded buffers, freed only at destruction. Owner-only: guarded
  /// by the owner role, not a lock (thieves never touch this vector).
  std::vector<std::unique_ptr<Buffer>> retired_ UFIM_GUARDED_BY(owner_role_);

  /// The "I am the slot owner" capability; see the class comment.
  Role owner_role_;
};

class TaskGroupImpl;

}  // namespace internal

/// A fixed-size pool of worker threads. Two kinds of work flow through
/// it:
///   * one-off closures via `Submit` (a mutex-guarded FIFO injection
///     queue — coarse, rare, and the only thing the pool-wide mutex
///     guards), and
///   * fork-join task groups (`TaskGroup`), whose tasks live in
///     per-participant Chase-Lev deques — pushed LIFO by the thread that
///     spawned them, stolen FIFO by the other participants. Idle pool
///     workers discover groups needing help through lightweight help
///     tokens placed on the injection queue.
/// Workers therefore sleep on one condition variable exactly as a plain
/// FIFO pool would; all the lock-free machinery is scoped inside groups.
///
/// Thread-safety contract (annotated, not just documented): `mu_`
/// guards the injection queue and the stop flag — every touch of
/// `queue_`/`stop_` must hold `mu_`, and the `-Wthread-safety` CI leg
/// proves it. The sleep protocol is the classic monitor: producers
/// push under `mu_` then notify `cv_`; workers re-check
/// `stop_ || !queue_.empty()` in a plain `while` loop under `mu_`
/// (not the predicate overload — the analysis cannot see into a
/// predicate lambda). The Chase-Lev deques are *not* guarded by `mu_`;
/// their ownership split is annotated on TaskDeque itself.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn`; the future observes completion and rethrows any
  /// exception the task raised. Safe to call from inside a task (the
  /// nested task is queued normally; nothing in the pool ever waits on
  /// another task, so this cannot deadlock).
  std::future<void> Submit(std::function<void()> fn);

  /// The process-wide pool, sized to HardwareThreads(), created on first
  /// use and kept alive for the process lifetime. All `TaskGroup` /
  /// `ParallelFor` calls share it; per-call `num_threads` caps how many
  /// of its workers one call occupies.
  static ThreadPool& Global();

  /// True when the calling thread is a worker of any ThreadPool.
  static bool InWorker();

 private:
  friend class TaskGroup;

  /// Asks an idle worker to help drain `group`; no-op when none is idle
  /// by the time the token is popped (the token re-checks).
  void PostHelpToken(std::shared_ptr<internal::TaskGroupImpl> group);

  void WorkerLoop();

  struct Injected;

  /// Written by the constructor only; joined by the destructor.
  std::vector<std::thread> workers_;
  /// Guards the injection queue and the stop flag (the only pool-wide
  /// shared state; see the class comment).
  Mutex mu_;
  std::deque<Injected> queue_ UFIM_GUARDED_BY(mu_);
  std::condition_variable cv_;
  bool stop_ UFIM_GUARDED_BY(mu_) = false;
};

/// A fork-join group of tasks scheduled over the shared pool's
/// work-stealing deques. The owning thread creates the group, spawns
/// tasks (tasks may themselves spawn into the group, or create nested
/// groups of their own — nesting runs parallel, it does not degrade to
/// serial), and blocks in `Wait`, which executes pending tasks itself
/// rather than idling.
///
/// Scheduling: a spawn from a participating thread pushes onto that
/// participant's own deque (LIFO — the child runs next on this thread
/// unless stolen, keeping working sets hot); idle participants steal the
/// *oldest* task of another participant (FIFO — stealing the biggest
/// remaining subtree first under recursive decomposition). Which thread
/// runs which task is scheduling-dependent; determinism is the caller's
/// contract: tasks write only pre-indexed result slots, and the caller
/// merges slots in task-index order after Wait.
///
/// Error contract: a throwing task never cancels the others; Wait runs
/// every spawned task to completion, then rethrows the exception of the
/// lowest-spawn-index failing task.
///
/// Cancellation: when a `RunContext` is attached and trips, participants
/// observe the token *between* tasks — in-flight task bodies drain to
/// completion (they poll their own checkpoints), but not-yet-started tasks
/// are skipped (still accounted, so Wait's bookkeeping is exact). Callers
/// that attach a context must poll it after Wait (`PollRunContext`) so
/// skipped work is never mistaken for completed work.
///
/// A group is not thread-safe for concurrent Spawn/Wait from unrelated
/// threads: Spawn may be called by the owner and from inside the group's
/// own tasks; Wait only by the owner.
class TaskGroup {
 public:
  /// `max_workers` caps how many threads (owner included) participate:
  /// 1 runs every task inline in Wait, 0 means HardwareThreads().
  /// `context`, when non-null, attaches a cancellation token for the
  /// lifetime of the group (the group keeps its own handle copy).
  explicit TaskGroup(std::size_t max_workers = 0,
                     const RunContext* context = nullptr,
                     ThreadPool& pool = ThreadPool::Global());

  /// Waits (without rethrowing) if Wait was never called.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Registers task `fn` with the next spawn index (0, 1, ...) and makes
  /// it available for execution. Returns the task's index.
  std::size_t Spawn(std::function<void()> fn);

  /// Runs and steals group tasks until every spawned task has completed,
  /// then rethrows the exception of the lowest-index failing task, if
  /// any. May be called repeatedly (spawn / wait phases).
  void Wait();

 private:
  ThreadPool& pool_;
  std::shared_ptr<internal::TaskGroupImpl> impl_;
};

/// Runs body(i) for every i in [0, n), partitioned into at most
/// `num_threads` contiguous chunks (chunk c covers [c*n/k, (c+1)*n/k)).
/// The calling thread executes the first chunk itself and helps run the
/// rest while waiting (work-stealing TaskGroup underneath). Blocks until
/// every index completed.
///
/// Determinism: the chunk decomposition is a pure function of (n,
/// num_threads), every index is executed by exactly one thread, and each
/// chunk runs whole on one thread, so any per-index or per-chunk state is
/// computed exactly as in the serial loop. The parallel counting kernels
/// get bit-identical results by partitioning work so that no
/// floating-point reduction crosses a chunk boundary.
///
/// num_threads == 0 means HardwareThreads(); num_threads <= 1 or n <= 1
/// runs the plain serial loop. Nested calls (from inside pool tasks) are
/// real parallel fork-joins, not serial fallbacks.
///
/// If one or more bodies throw, the remaining chunks still run to
/// completion and the exception of the lowest-numbered failing chunk is
/// rethrown in the caller.
///
/// When `context` is non-null, workers poll it between indices and stop
/// starting new ones once it trips; the call then unwinds with
/// `RunAbortedError` (after draining in-flight bodies), so a cancelled
/// loop can never be mistaken for a completed one.
void ParallelFor(std::size_t n, std::size_t num_threads,
                 const std::function<void(std::size_t)>& body,
                 const RunContext* context = nullptr);

/// Number of chunks `ParallelForChunks` decomposes [0, n) into:
/// min(num_threads, n), with num_threads == 0 meaning HardwareThreads().
/// Callers size per-chunk scratch with this.
std::size_t ParallelChunkCount(std::size_t n, std::size_t num_threads);

/// Chunk-granular ParallelFor: partitions [0, n) into
/// `ParallelChunkCount(n, num_threads)` contiguous chunks (chunk c
/// covers [c*n/k, (c+1)*n/k), the same decomposition ParallelFor uses
/// internally) and runs body(chunk, lo, hi) once per chunk — the shape
/// for workers that carry per-chunk scratch across a contiguous range
/// of items. This is the single home of the boundary math that the
/// bit-identical-results arguments lean on; per-item results must not
/// depend on the chunking.
void ParallelForChunks(
    std::size_t n, std::size_t num_threads,
    const std::function<void(std::size_t chunk, std::size_t lo,
                             std::size_t hi)>& body,
    const RunContext* context = nullptr);

/// Number of worker slots `ParallelForDynamic` uses for a given (n,
/// num_threads): min(num_threads, n), with num_threads == 0 meaning
/// HardwareThreads(). Callers size per-worker scratch with this.
std::size_t ParallelWorkerCount(std::size_t n, std::size_t num_threads);

/// Dynamically-scheduled counterpart of ParallelFor for *skewed*
/// workloads: runs body(i, worker) for every i in [0, n), with indices
/// claimed one at a time from a shared atomic cursor by
/// `ParallelWorkerCount(n, num_threads)` workers (the calling thread is
/// worker 0). A worker that draws a heavy index no longer stalls a whole
/// contiguous chunk behind it.
///
/// Determinism: every index is executed exactly once, whole, by one
/// worker. Which worker runs it (and in what real-time order) is
/// scheduling-dependent, so bodies must confine writes to per-index
/// slots and per-worker scratch (`worker` < ParallelWorkerCount(n,
/// num_threads) identifies a private scratch slot); callers merge
/// per-index results in a fixed order afterwards. Under that discipline
/// results are bit-identical at every thread count, including the serial
/// fallback.
///
/// num_threads == 0 means HardwareThreads(); num_threads <= 1 or n <= 1
/// runs the plain serial loop with worker == 0. Nested calls fork real
/// nested groups, each with its own private worker-id space.
///
/// If bodies throw, every index is still attempted and the exception of
/// the lowest-numbered failing index is rethrown in the caller.
///
/// When `context` is non-null, workers check it before claiming each
/// index from the cursor and stop claiming once it trips; the call then
/// unwinds with `RunAbortedError` after the in-flight bodies drain.
void ParallelForDynamic(
    std::size_t n, std::size_t num_threads,
    const std::function<void(std::size_t index, std::size_t worker)>& body,
    const RunContext* context = nullptr);

}  // namespace ufim

#endif  // UFIM_COMMON_THREAD_POOL_H_
