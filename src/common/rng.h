#ifndef UFIM_COMMON_RNG_H_
#define UFIM_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace ufim {

/// Deterministic random source used by all generators.
///
/// A thin wrapper over std::mt19937_64 so that (a) every synthetic dataset
/// is reproducible from a single seed, and (b) the distribution plumbing
/// (Gaussian, Zipf, exponential, Poisson) lives in one audited place.
class Rng {
 public:
  /// Seeds the engine. The default seed is fixed so benchmarks are
  /// reproducible run-to-run.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi);

  /// Normal draw with the given mean and *standard deviation*.
  double Gaussian(double mean, double stddev);

  /// Exponential draw with the given mean (= 1/lambda).
  double Exponential(double mean);

  /// Poisson draw with the given mean.
  unsigned Poisson(double mean);

  /// Zipf draw over ranks {1, ..., n} with exponent `skew` >= 0:
  /// P(rank = k) proportional to k^-skew. Exact inverse-CDF sampling over
  /// a cumulative table cached across calls with the same (n, skew).
  std::uint64_t Zipf(std::uint64_t n, double skew);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Access to the raw engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  // Cached Zipf cumulative table (see Zipf()).
  std::uint64_t zipf_n_ = 0;
  double zipf_skew_ = -1.0;
  std::vector<double> zipf_cdf_;
};

/// Samples `k` distinct indices from [0, n) uniformly (Floyd's algorithm).
/// Returned in unspecified order. Precondition: k <= n.
std::vector<std::uint64_t> SampleWithoutReplacement(Rng& rng, std::uint64_t n,
                                                    std::uint64_t k);

/// Derives the seed of sub-stream `stream` from a base `seed`
/// (counter-based stream splitting): a SplitMix64 finalizer over
/// seed + golden-ratio * (stream + 1). Distinct streams of one seed are
/// statistically independent for Monte-Carlo purposes, and the mapping
/// is a pure function — consumers that seed one `Rng` per work unit from
/// a stable unit index get results independent of execution order, which
/// is what lets MCSampling's tail sampling run in parallel and stay
/// bit-identical at every thread count.
std::uint64_t DeriveStreamSeed(std::uint64_t seed, std::uint64_t stream);

}  // namespace ufim

#endif  // UFIM_COMMON_RNG_H_
