#ifndef UFIM_COMMON_MATH_UTIL_H_
#define UFIM_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>

namespace ufim {

/// Small numeric helpers shared across modules. Heavier special functions
/// (Φ, incomplete gamma) live in src/prob.

/// Clamps `x` into [lo, hi].
double Clamp(double x, double lo, double hi);

/// True iff |a - b| <= tol, with tol interpreted absolutely.
bool AlmostEqual(double a, double b, double tol = 1e-9);

/// Smallest power of two >= n (n >= 1). Returns 1 for n == 0.
std::size_t NextPowerOfTwo(std::size_t n);

/// log(n!) via lgamma; exact enough for probability computations.
double LogFactorial(unsigned n);

/// Kahan (compensated) summation accumulator. Mining algorithms sum
/// hundreds of thousands of small probabilities; naive accumulation loses
/// precision that the cross-algorithm agreement tests would flag.
class KahanSum {
 public:
  KahanSum() = default;

  /// Adds `x` to the running sum with error compensation.
  void Add(double x) {
    double y = x - compensation_;
    double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  /// The compensated total.
  double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace ufim

#endif  // UFIM_COMMON_MATH_UTIL_H_
