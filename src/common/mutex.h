#ifndef UFIM_COMMON_MUTEX_H_
#define UFIM_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace ufim {

/// `std::mutex` with Clang Thread Safety Analysis attributes.
///
/// libstdc++'s `std::mutex` / `std::lock_guard` carry no capability
/// annotations, so `GUARDED_BY` members guarded by a raw `std::mutex`
/// are invisible to the analysis. Library code uses this wrapper (plus
/// `MutexLock` below) instead; `ufim_lint`'s raw-mutex rule keeps new
/// `std::mutex` uses from creeping back in.
///
/// Deliberately minimal: no try-lock, no timed lock, no recursion —
/// nothing in the codebase needs them, and a smaller surface keeps the
/// annotations trivially faithful.
class UFIM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() UFIM_ACQUIRE() { mu_.lock(); }
  void Unlock() UFIM_RELEASE() { mu_.unlock(); }

  /// The wrapped mutex, for interop with std::condition_variable via
  /// MutexLock::native_lock(). Callers must not lock it directly (that
  /// would bypass the analysis).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for `Mutex`, visible to the analysis as a scoped
/// capability (the annotated replacement for std::lock_guard /
/// std::unique_lock).
class UFIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) UFIM_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() UFIM_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For `std::condition_variable::wait*`: the wait atomically releases
  /// and reacquires the underlying mutex, so from the analysis's view
  /// the capability is continuously held — which is exactly the
  /// postcondition a waiter relies on. Guarded state read in the wait
  /// condition must be re-checked after the wait returns (use a plain
  /// `while` loop, not the predicate overload: the analysis cannot see
  /// capability state inside a predicate lambda).
  std::unique_lock<std::mutex>& native_lock() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace ufim

#endif  // UFIM_COMMON_MUTEX_H_
