#ifndef UFIM_COMMON_CLI_ARGS_H_
#define UFIM_COMMON_CLI_ARGS_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ufim::cli {

/// The flags one subcommand accepts: `value_flags` consume the token
/// after them (`--threads 8`), `switches` stand alone (`--closed`).
struct FlagSpec {
  std::vector<std::string_view> value_flags;
  std::vector<std::string_view> switches;
};

/// Minimal long-flag command-line parser shared by the tools, split out
/// of ufim_cli so its validation is unit-testable.
///
/// Parsing is strict where it used to be permissive, closing two classes
/// of silent misconfiguration:
///   * numeric accessors validate the *full* token — `--threads abc`
///     and `--shards -1` are errors, not 0 and ~1.8e19 (the old
///     atoll/atof behaviour);
///   * `Validate` rejects flags a subcommand does not know, so a typo
///     like `--thread 4` fails loudly instead of silently dropping both
///     the flag and its value.
/// Accessor failures report through `*error` (never exit()), so the
/// tools decide how to die and tests can assert on messages.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;

  /// Tokenizes argv into positionals and `--key [value]` pairs.
  /// `switches` lists the flags that never consume a value (the union
  /// across subcommands — per-subcommand membership is `Validate`'s
  /// job, once the subcommand is known). Returns nullopt and sets
  /// `*error` when a value flag ends the argument list without a value.
  static std::optional<Args> Parse(int argc, const char* const* argv,
                                   const std::vector<std::string_view>& switches,
                                   std::string* error);

  /// Checks every parsed flag against `spec`; false + `*error` naming
  /// the first unknown flag otherwise. Call after subcommand dispatch.
  bool Validate(const FlagSpec& spec, std::string* error) const;

  /// Raw flag value; nullptr when absent.
  const char* Get(const std::string& key) const;

  /// Full-token non-negative integer: `*out` gets the parsed value, or
  /// `fallback` when the flag is absent. False + `*error` on a token
  /// that is not entirely decimal digits (so signs, garbage, and empty
  /// strings are all rejected) or does not fit std::size_t.
  bool GetSize(const std::string& key, std::size_t fallback, std::size_t* out,
               std::string* error) const;

  /// Full-token finite double via strtod: `*out` gets the parsed value,
  /// or `fallback` when the flag is absent. False + `*error` on empty or
  /// partially-consumed tokens (`0.5x`), overflow, or non-finite values.
  bool GetDouble(const std::string& key, double fallback, double* out,
                 std::string* error) const;
};

}  // namespace ufim::cli

#endif  // UFIM_COMMON_CLI_ARGS_H_
