#include "common/math_util.h"

#include <cmath>

namespace ufim {

double Clamp(double x, double lo, double hi) {
  if (x < lo) return lo;
  if (x > hi) return hi;
  return x;
}

bool AlmostEqual(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

double LogFactorial(unsigned n) { return std::lgamma(static_cast<double>(n) + 1.0); }

}  // namespace ufim
