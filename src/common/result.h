#ifndef UFIM_COMMON_RESULT_H_
#define UFIM_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ufim {

/// A value-or-error container: either holds a `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result` / `absl::StatusOr`. Accessing the value of an
/// errored result is a programming error (checked with assert in debug
/// builds).
///
/// ```
/// Result<UncertainDatabase> r = LoadDatabase(path);
/// if (!r.ok()) return r.status();
/// UncertainDatabase db = std::move(r).value();
/// ```
///
/// [[nodiscard]] like `Status`: discarding a `Result` discards both the
/// value *and* the error — doubly wrong. See status.h for the escape
/// hatch when dropping one is intentional.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` is a
  /// programming error: OK results must carry a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// Value accessors. Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if present, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Propagates the error of a `Result` expression, or binds its value.
#define UFIM_ASSIGN_OR_RETURN(lhs, expr)          \
  auto UFIM_CONCAT_(_ufim_result_, __LINE__) = (expr);            \
  if (!UFIM_CONCAT_(_ufim_result_, __LINE__).ok()) \
    return UFIM_CONCAT_(_ufim_result_, __LINE__).status();        \
  lhs = std::move(UFIM_CONCAT_(_ufim_result_, __LINE__)).value()

#define UFIM_CONCAT_INNER_(a, b) a##b
#define UFIM_CONCAT_(a, b) UFIM_CONCAT_INNER_(a, b)

}  // namespace ufim

#endif  // UFIM_COMMON_RESULT_H_
