#include "common/run_context.h"

#include <chrono>

#include "eval/memory_tracker.h"

namespace ufim {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void RunContext::SetDeadlineAfter(std::chrono::nanoseconds budget) const {
  state_->deadline_ns.store(NowNs() + budget.count(),
                            std::memory_order_release);
}

void RunContext::SetMemoryBudgetBytes(std::size_t bytes) const {
  state_->budget_baseline.store(memory_tracker::CurrentBytes(),
                                std::memory_order_relaxed);
  state_->budget_bytes.store(bytes, std::memory_order_release);
}

void RunContext::Reset() const {
  State* s = state_.get();
  s->counting.store(false, std::memory_order_relaxed);
  s->deadline_ns.store(kNoDeadline, std::memory_order_relaxed);
  s->budget_bytes.store(0, std::memory_order_relaxed);
  s->budget_baseline.store(0, std::memory_order_relaxed);
  s->checkpoints.store(0, std::memory_order_relaxed);
  s->fault_at.store(0, std::memory_order_relaxed);
  s->fault_code.store(0, std::memory_order_relaxed);
  s->tripped.store(0, std::memory_order_release);
}

void RunContext::ArmFaultAtCheckpoint(std::uint64_t nth,
                                      StatusCode code) const {
  State* s = state_.get();
  s->fault_code.store(static_cast<int>(code), std::memory_order_relaxed);
  s->fault_at.store(nth == 0 ? 1 : nth, std::memory_order_relaxed);
  s->checkpoints.store(0, std::memory_order_relaxed);
  s->counting.store(true, std::memory_order_release);
}

void RunContext::Trip(StatusCode code) const {
  int expected = 0;
  state_->tripped.compare_exchange_strong(expected, static_cast<int>(code),
                                          std::memory_order_acq_rel);
}

Status RunContext::TrippedStatus(int code) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kCancelled:
      return Status::Cancelled("run cancelled");
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded("run deadline exceeded");
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted("run memory budget exceeded");
    default:
      return Status(static_cast<StatusCode>(code), "run aborted");
  }
}

Status RunContext::PollLimits() const {
  State* s = state_.get();
  const std::int64_t deadline = s->deadline_ns.load(std::memory_order_acquire);
  if (deadline != kNoDeadline && NowNs() > deadline) {
    Trip(StatusCode::kDeadlineExceeded);
  } else {
    const std::size_t budget = s->budget_bytes.load(std::memory_order_acquire);
    if (budget != 0) {
      const std::size_t now = memory_tracker::CurrentBytes();
      const std::size_t base =
          s->budget_baseline.load(std::memory_order_relaxed);
      if (now > base && now - base > budget) {
        Trip(StatusCode::kResourceExhausted);
      }
    }
  }
  const int code = s->tripped.load(std::memory_order_relaxed);
  return code == 0 ? Status::OK() : TrippedStatus(code);
}

Status RunContext::CountedCheck() const {
  State* s = state_.get();
  const std::uint64_t n =
      s->checkpoints.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t at = s->fault_at.load(std::memory_order_relaxed);
  if (at != 0 && n >= at) {
    Trip(static_cast<StatusCode>(s->fault_code.load(std::memory_order_relaxed)));
  }
  const int code = s->tripped.load(std::memory_order_relaxed);
  if (code != 0) return TrippedStatus(code);
  return PollLimits();
}

}  // namespace ufim
