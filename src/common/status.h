#ifndef UFIM_COMMON_STATUS_H_
#define UFIM_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ufim {

/// Error-handling vocabulary for the whole library.
///
/// `ufim` follows the RocksDB/Arrow convention for database engines: no
/// exceptions cross the public API. Fallible operations return a `Status`
/// (or a `Result<T>`, see result.h) and the caller decides how to react.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kIOError = 4,
  kInternal = 5,
  kCancelled = 6,
  kDeadlineExceeded = 7,
  kResourceExhausted = 8,
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"…).
std::string_view StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString. Returns false for unrecognized names
/// ("Unknown" included — it is not a real code).
bool StatusCodeFromString(std::string_view name, StatusCode* code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no message and allocates nothing. Error statuses
/// carry a code and a context message. Typical use:
///
/// ```
/// Status s = db.Validate();
/// if (!s.ok()) return s;  // propagate
/// ```
///
/// The class itself is [[nodiscard]]: any expression that produces a
/// `Status` and drops it on the floor is a compile error under
/// -Werror=unused-result (GCC) / the clang equivalent. Silently ignoring
/// an error is exactly the bug class this convention exists to prevent;
/// a call site that genuinely cannot fail, or where failure is
/// acceptable, says so with an explicit cast:
/// `static_cast<void>(MayFail());`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status from the current function.
#define UFIM_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::ufim::Status _ufim_status = (expr);       \
    if (!_ufim_status.ok()) return _ufim_status; \
  } while (false)

}  // namespace ufim

#endif  // UFIM_COMMON_STATUS_H_
