#ifndef UFIM_PROB_POISSON_H_
#define UFIM_PROB_POISSON_H_

#include <cstddef>

namespace ufim {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), a > 0,
/// x >= 0. Series expansion for x < a + 1, Lentz continued fraction
/// otherwise (Numerical Recipes construction, implemented from scratch).
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// Poisson CDF Pr(X <= k) for X ~ Poisson(lambda), via Q(k+1, lambda).
double PoissonCdf(std::size_t k, double lambda);

/// Poisson upper tail Pr(X >= k) = P(k, lambda) for k >= 1; 1 for k == 0.
/// This is the approximation PDUApriori (§3.3.1) applies to the frequent
/// probability with lambda = esup(X).
double PoissonTail(std::size_t k, double lambda);

/// The λ* used by PDUApriori: the smallest lambda such that
/// Pr(Poisson(lambda) >= msc) > pft. PoissonTail is strictly increasing
/// in lambda, so an itemset is (Poisson-)approximately probabilistic-
/// frequent iff esup(X) >= λ*. Found by bisection to absolute 1e-9.
double PoissonLambdaForTail(std::size_t msc, double pft);

}  // namespace ufim

#endif  // UFIM_PROB_POISSON_H_
