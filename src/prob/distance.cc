#include "prob/distance.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "prob/normal.h"

namespace ufim {

double TotalVariationDistance(const std::vector<double>& a,
                              const std::vector<double>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double av = k < a.size() ? a[k] : 0.0;
    const double bv = k < b.size() ? b[k] : 0.0;
    sum += std::fabs(av - bv);
  }
  return 0.5 * sum;
}

double KolmogorovDistance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  const std::size_t n = std::max(a.size(), b.size());
  double ca = 0.0, cb = 0.0, worst = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    ca += k < a.size() ? a[k] : 0.0;
    cb += k < b.size() ? b[k] : 0.0;
    worst = std::max(worst, std::fabs(ca - cb));
  }
  return worst;
}

std::vector<double> DiscretizedNormalPmf(double mean, double variance,
                                         std::size_t len) {
  std::vector<double> pmf(len, 0.0);
  if (len == 0) return pmf;
  if (variance <= 0.0) {
    // Degenerate: all mass at round(mean), clamped into range.
    double m = std::round(mean);
    if (m < 0.0) m = 0.0;
    std::size_t idx = static_cast<std::size_t>(m);
    if (idx >= len) idx = len - 1;
    pmf[idx] = 1.0;
    return pmf;
  }
  const double sd = std::sqrt(variance);
  double prev = 0.0;  // Φ((k - 0.5 - mean)/sd) at k = 0 boundary includes all mass below
  prev = StdNormalCdf((-0.5 - mean) / sd);
  for (std::size_t k = 0; k < len; ++k) {
    const double cur = StdNormalCdf((static_cast<double>(k) + 0.5 - mean) / sd);
    pmf[k] = cur - prev;
    prev = cur;
  }
  // Mass below -0.5 is folded into bin 0; mass above len-0.5 into the
  // last bin, so the pmf sums to 1 and comparisons are fair.
  pmf[0] += StdNormalCdf((-0.5 - mean) / sd);
  pmf[len - 1] += 1.0 - prev;
  return pmf;
}

std::vector<double> PoissonPmf(double lambda, std::size_t len) {
  std::vector<double> pmf(len, 0.0);
  if (len == 0) return pmf;
  if (lambda <= 0.0) {
    pmf[0] = 1.0;
    return pmf;
  }
  for (std::size_t k = 0; k < len; ++k) {
    pmf[k] = std::exp(-lambda + static_cast<double>(k) * std::log(lambda) -
                      LogFactorial(static_cast<unsigned>(k)));
  }
  // Fold the tail beyond the support into the last bin for a proper pmf.
  double sum = 0.0;
  for (std::size_t k = 0; k + 1 < len; ++k) sum += pmf[k];
  pmf[len - 1] = std::max(0.0, 1.0 - sum);
  return pmf;
}

}  // namespace ufim
