#ifndef UFIM_PROB_POISSON_BINOMIAL_H_
#define UFIM_PROB_POISSON_BINOMIAL_H_

#include <cstddef>
#include <vector>

namespace ufim {

/// The support sup(X) of an itemset X over an uncertain database is a
/// Poisson-binomial random variable: a sum of independent Bernoulli trials
/// with success probabilities p_i = Pr(X ⊆ T_i). This header collects the
/// exact machinery over that distribution; `normal.h` and `poisson.h`
/// provide the two approximations the paper studies.

/// First two moments: mean = Σ p_i, variance = Σ p_i (1 - p_i).
/// Computing both costs the same O(n) — the property §1 of the paper
/// leans on to unify the two frequentness definitions.
struct SupportMoments {
  double mean = 0.0;
  double variance = 0.0;
};

SupportMoments ComputeSupportMoments(const std::vector<double>& probs);

/// Exact upper tail Pr(S >= k) by the dynamic program of Bernecker et al.
/// (§3.2.1): O(n * k) time, O(k) memory. k == 0 returns 1.
double PoissonBinomialTailDP(const std::vector<double>& probs, std::size_t k);

/// Exact tail-capped pmf by the same DP: result has length
/// min(n, cap) + 1; index j < cap is Pr(S = j) and the last index (== cap
/// when n >= cap) is Pr(S >= cap).
std::vector<double> PoissonBinomialCappedPmfDP(const std::vector<double>& probs,
                                               std::size_t cap);

/// Reusable workspace for the tail DP. Level-wise miners keep one per
/// worker thread so the O(k) pmf row is allocated once and recycled across
/// every candidate of every level instead of per tail evaluation.
struct DpScratch {
  std::vector<double> pmf;
};

/// Tail DP over reusable scratch, with an optional certified early reject.
///
/// When `reject_threshold` >= 0 the partial pmf is periodically used to
/// bound the final tail from above: after i of n trials, every world with
/// S_n >= k must already have S_i >= k - (n - i), so
/// Pr(S_n >= k) <= sum_{j >= k - (n-i)} pmf_i[j]. Once that bound drops
/// far enough below `reject_threshold` (a 1e-7 safety margin absorbs
/// floating-point drift) the DP aborts and returns the bound — which is
/// itself <= reject_threshold, so callers comparing the result against the
/// threshold make the same infrequent/frequent decision a full evaluation
/// would. When the DP runs to completion the result is bit-identical to
/// PoissonBinomialTailDP(probs, k). reject_threshold < 0 disables the
/// early exit entirely (pure scratch reuse).
double PoissonBinomialTailDP(const std::vector<double>& probs, std::size_t k,
                             double reject_threshold, DpScratch& scratch);

/// Exact upper tail Pr(S >= k) by the divide-and-conquer convolution of
/// Sun et al. (§3.2.2): splits the trial list, recursively computes the
/// two tail-capped sub-pmfs, and conquers with (FFT) convolution —
/// O(n log n) when k is proportional to n. `fft_threshold` controls when
/// the conquer step switches from schoolbook to FFT multiplication.
double PoissonBinomialTailDC(const std::vector<double>& probs, std::size_t k,
                             std::size_t fft_threshold = 64);

/// The full capped pmf as computed by the divide-and-conquer recursion
/// (exposed for tests and the micro-benchmarks).
std::vector<double> PoissonBinomialCappedPmfDC(const std::vector<double>& probs,
                                               std::size_t cap,
                                               std::size_t fft_threshold = 64);

}  // namespace ufim

#endif  // UFIM_PROB_POISSON_BINOMIAL_H_
