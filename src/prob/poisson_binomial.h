#ifndef UFIM_PROB_POISSON_BINOMIAL_H_
#define UFIM_PROB_POISSON_BINOMIAL_H_

#include <cstddef>
#include <vector>

namespace ufim {

/// The support sup(X) of an itemset X over an uncertain database is a
/// Poisson-binomial random variable: a sum of independent Bernoulli trials
/// with success probabilities p_i = Pr(X ⊆ T_i). This header collects the
/// exact machinery over that distribution; `normal.h` and `poisson.h`
/// provide the two approximations the paper studies.

/// First two moments: mean = Σ p_i, variance = Σ p_i (1 - p_i).
/// Computing both costs the same O(n) — the property §1 of the paper
/// leans on to unify the two frequentness definitions.
struct SupportMoments {
  double mean = 0.0;
  double variance = 0.0;
};

SupportMoments ComputeSupportMoments(const std::vector<double>& probs);

/// Exact upper tail Pr(S >= k) by the dynamic program of Bernecker et al.
/// (§3.2.1): O(n * k) time, O(k) memory. k == 0 returns 1.
double PoissonBinomialTailDP(const std::vector<double>& probs, std::size_t k);

/// Exact tail-capped pmf by the same DP: result has length
/// min(n, cap) + 1; index j < cap is Pr(S = j) and the last index (== cap
/// when n >= cap) is Pr(S >= cap).
std::vector<double> PoissonBinomialCappedPmfDP(const std::vector<double>& probs,
                                               std::size_t cap);

/// Exact upper tail Pr(S >= k) by the divide-and-conquer convolution of
/// Sun et al. (§3.2.2): splits the trial list, recursively computes the
/// two tail-capped sub-pmfs, and conquers with (FFT) convolution —
/// O(n log n) when k is proportional to n. `fft_threshold` controls when
/// the conquer step switches from schoolbook to FFT multiplication.
double PoissonBinomialTailDC(const std::vector<double>& probs, std::size_t k,
                             std::size_t fft_threshold = 64);

/// The full capped pmf as computed by the divide-and-conquer recursion
/// (exposed for tests and the micro-benchmarks).
std::vector<double> PoissonBinomialCappedPmfDC(const std::vector<double>& probs,
                                               std::size_t cap,
                                               std::size_t fft_threshold = 64);

}  // namespace ufim

#endif  // UFIM_PROB_POISSON_BINOMIAL_H_
