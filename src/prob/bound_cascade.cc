#include "prob/bound_cascade.h"

#include <algorithm>
#include <cmath>

#include "prob/chernoff.h"
#include "prob/normal.h"

namespace ufim {

namespace {

// Absolute widening applied to the final interval. The analytic bounds are
// exact for the true tail; the slack covers floating-point error both here
// and in the DP/DC evaluators the decision is compared against (whose
// accumulated error is orders of magnitude below 1e-9 for any realistic n).
constexpr double kSlack = 1e-9;

// Shevtsova (2010) constant for the Berry-Esseen bound on sums of
// independent, non-identically distributed variables.
constexpr double kBerryEsseenC = 0.56;

// Cantelli upper tail: Pr(S - mu >= a) <= v / (v + a^2) for a > 0.
double CantelliUpper(double mean, double variance, std::size_t msc) {
  const double a = static_cast<double>(msc) - mean;
  if (a <= 0.0) return 1.0;  // threshold not above the mean: vacuous
  if (variance <= 0.0) return 0.0;
  return variance / (variance + a * a);
}

// Cantelli lower tail: Pr(S >= msc) = 1 - Pr(mu - S >= mu - msc + 1)
// >= 1 - v / (v + b^2) with b = mu - msc + 1 > 0.
double CantelliLower(double mean, double variance, std::size_t msc) {
  const double b = mean - static_cast<double>(msc) + 1.0;
  if (b <= 0.0) return 0.0;  // threshold above the mean: vacuous
  if (variance <= 0.0) return 1.0;
  return 1.0 - variance / (variance + b * b);
}

}  // namespace

TailInterval CertifiedTailInterval(double mean, double variance,
                                   std::size_t msc) {
  if (msc == 0) return {1.0, 1.0};  // Pr(S >= 0) == 1 identically
  const double var = variance > 0.0 ? variance : 0.0;

  double lower = std::max(ChernoffLowerBound(mean, msc),
                          CantelliLower(mean, var, msc));
  double upper = std::min(ChernoffUpperBound(mean, msc),
                          CantelliUpper(mean, var, msc));

  if (var > 0.0) {
    // Berry-Esseen certified normal envelope around
    // Pr(S >= msc) = 1 - Pr(S <= msc - 1).
    const double sigma = std::sqrt(var);
    const double envelope = kBerryEsseenC / sigma;  // C * psi, psi <= 1/sigma
    if (envelope < 0.5) {                           // otherwise vacuous
      const double z = (static_cast<double>(msc) - 1.0 - mean) / sigma;
      const double estimate = 1.0 - StdNormalCdf(z);
      lower = std::max(lower, estimate - envelope);
      upper = std::min(upper, estimate + envelope);
    }
  }

  lower = std::max(0.0, lower - kSlack);
  upper = std::min(1.0, upper + kSlack);
  if (lower > upper) return {0.0, 1.0};  // inconsistent: fall back to vacuous
  return {lower, upper};
}

BoundDecision ClassifyTail(const TailInterval& interval, double pft) {
  if (interval.upper <= pft) return BoundDecision::kReject;
  if (interval.lower > pft) return BoundDecision::kAccept;
  return BoundDecision::kUndecided;
}

}  // namespace ufim
