#ifndef UFIM_PROB_CONVOLUTION_H_
#define UFIM_PROB_CONVOLUTION_H_

#include <cstddef>
#include <vector>

namespace ufim {

/// Schoolbook O(n*m) polynomial multiplication. Reference implementation
/// and the fast path for small operands (FFT constant factors dominate
/// below ~64 coefficients).
std::vector<double> NaiveConvolve(const std::vector<double>& a,
                                  const std::vector<double>& b);

/// Folds all probability mass at indices >= cap into index cap, producing
/// a "tail-capped" pmf of length at most cap+1. Index cap then means
/// Pr(S >= cap). In-place semantics via return value.
std::vector<double> CapPmf(std::vector<double> pmf, std::size_t cap);

/// Convolves two tail-capped pmfs and re-caps the result at `cap`.
/// Because any combination involving mass at >= cap lands at >= cap, the
/// lumped representation stays exact for the tail Pr(S >= cap).
/// Uses FFT when both operands exceed `fft_threshold` coefficients.
std::vector<double> CappedConvolve(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   std::size_t cap,
                                   std::size_t fft_threshold = 64);

}  // namespace ufim

#endif  // UFIM_PROB_CONVOLUTION_H_
