#include "prob/chernoff.h"

#include <cmath>

namespace ufim {

double ChernoffUpperBound(double mu, std::size_t msc) {
  if (mu <= 0.0) {
    // Zero expectation: the support is identically zero.
    return msc == 0 ? 1.0 : 0.0;
  }
  const double delta = (static_cast<double>(msc) - mu - 1.0) / mu;
  if (delta <= 0.0) return 1.0;
  constexpr double kTwoEMinusOne = 2.0 * 2.71828182845904523536 - 1.0;
  double bound;
  if (delta > kTwoEMinusOne) {
    bound = std::exp2(-delta * mu);
  } else {
    bound = std::exp(-delta * delta * mu / 4.0);
  }
  return bound > 1.0 ? 1.0 : bound;
}

bool ChernoffCertifiesInfrequent(double mu, std::size_t msc, double pft) {
  return ChernoffUpperBound(mu, msc) <= pft;
}

double ChernoffLowerBound(double mu, std::size_t msc) {
  if (msc == 0) return 1.0;  // Pr(S >= 0) is identically 1.
  if (mu <= 0.0) return 0.0;
  const double delta = (mu - static_cast<double>(msc) + 1.0) / mu;
  if (delta <= 0.0) return 0.0;  // threshold at or above the mean: vacuous
  const double clamped = delta > 1.0 ? 1.0 : delta;
  const double lower = 1.0 - std::exp(-clamped * clamped * mu / 2.0);
  return lower < 0.0 ? 0.0 : lower;
}

}  // namespace ufim
