#ifndef UFIM_PROB_NORMAL_H_
#define UFIM_PROB_NORMAL_H_

#include <cstddef>

namespace ufim {

/// Standard Normal CDF Φ(x).
double StdNormalCdf(double x);

/// Standard Normal quantile Φ⁻¹(p), p in (0, 1). Acklam's rational
/// approximation refined with one Halley step (|error| < 1e-12).
double StdNormalQuantile(double p);

/// Normal (Lyapunov CLT) approximation of the frequent probability
/// Pr(sup(X) >= msc) for a Poisson-binomial support distribution with the
/// given mean and variance, using the 0.5 continuity correction:
///
///   Pr(X) ≈ 1 − Φ((msc − 0.5 − esup) / sqrt(var))
///
/// Note: the paper's §3.3.2 prints Φ(...) without the "1 −"; as printed
/// that is the probability of *infrequency*. We implement the corrected
/// orientation (it is the one that matches the cited source and the exact
/// DP/DC values; see DESIGN.md §2).
///
/// Degenerate case var <= 0 (all containment probabilities are 0 or 1):
/// the support is deterministic and the function returns the step
/// function [esup >= msc - 0.5].
double NormalApproxFrequentProbability(double esup, double variance,
                                       std::size_t msc);

}  // namespace ufim

#endif  // UFIM_PROB_NORMAL_H_
