#ifndef UFIM_PROB_CHERNOFF_H_
#define UFIM_PROB_CHERNOFF_H_

#include <cstddef>

namespace ufim {

/// Chernoff-bound pruning (Lemma 1 of the paper, after Sun et al. [28]).
///
/// For a Poisson-binomial support distribution with expectation mu, the
/// frequent probability Pr(sup >= msc) is bounded above by
///
///   2^{-delta * mu}            if delta > 2e - 1
///   exp(-delta^2 * mu / 4)     if 0 < delta <= 2e - 1
///
/// with delta = (msc - mu - 1) / mu (msc is the absolute minimum support
/// count N * min_sup; the lemma's `min_sup` is read as a count, the only
/// dimensionally consistent interpretation — see DESIGN.md §2).
///
/// Returns 1.0 when the bound is inapplicable (delta <= 0, i.e. the
/// threshold is not above the mean), so callers can use the return value
/// directly as a valid (if vacuous) upper bound.
double ChernoffUpperBound(double mu, std::size_t msc);

/// True iff the Chernoff bound alone certifies that the itemset cannot be
/// a probabilistic frequent itemset at threshold `pft` (bound <= pft, so
/// Pr > pft is impossible). Costs O(1) given mu; computing mu is the O(N)
/// the paper's Table 4 charges to this test.
bool ChernoffCertifiesInfrequent(double mu, std::size_t msc, double pft);

/// Lower-tail counterpart: a certified lower bound on Pr(sup >= msc).
/// From the multiplicative Chernoff bound Pr(S <= (1-delta) mu) <=
/// exp(-delta^2 mu / 2) with (1-delta) mu = msc - 1, i.e.
/// delta = (mu - msc + 1) / mu, valid when 0 < delta <= 1:
///
///   Pr(sup >= msc) = 1 - Pr(S <= msc - 1) >= 1 - exp(-delta^2 mu / 2).
///
/// Returns 0.0 when inapplicable (mu <= msc - 1, or mu == 0 with
/// msc > 0), so the result is always a valid (if vacuous) lower bound.
double ChernoffLowerBound(double mu, std::size_t msc);

}  // namespace ufim

#endif  // UFIM_PROB_CHERNOFF_H_
