#include "prob/poisson_binomial.h"

#include <algorithm>

#include "common/math_util.h"
#include "prob/convolution.h"

namespace ufim {

SupportMoments ComputeSupportMoments(const std::vector<double>& probs) {
  KahanSum mean, var;
  for (double p : probs) {
    mean.Add(p);
    var.Add(p * (1.0 - p));
  }
  return SupportMoments{mean.value(), var.value()};
}

std::vector<double> PoissonBinomialCappedPmfDP(const std::vector<double>& probs,
                                               std::size_t cap) {
  // pmf[j] = Pr(exactly j successes so far) for j < top;
  // pmf[top] = Pr(>= top) once the overflow bucket is live (top == cap).
  const std::size_t top = std::min(cap, probs.size());
  if (top == 0) return {1.0};  // cap == 0 or no trials: all mass at "via >= 0"
  std::vector<double> pmf(top + 1, 0.0);
  pmf[0] = 1.0;
  std::size_t filled = 0;  // highest index with possibly-nonzero mass
  const bool capped = probs.size() > cap;
  for (double p : probs) {
    const std::size_t hi = std::min(filled + 1, top);
    for (std::size_t j = hi; j > 0; --j) {
      const bool overflow_bin = capped && j == top;
      if (overflow_bin) {
        // Overflow keeps its mass and absorbs promotions from j-1.
        pmf[j] = pmf[j] + pmf[j - 1] * p;
      } else {
        pmf[j] = pmf[j] * (1.0 - p) + pmf[j - 1] * p;
      }
    }
    pmf[0] *= (1.0 - p);
    filled = hi;
  }
  return pmf;
}

double PoissonBinomialTailDP(const std::vector<double>& probs, std::size_t k) {
  if (k == 0) return 1.0;
  if (probs.size() < k) return 0.0;
  const std::vector<double> pmf = PoissonBinomialCappedPmfDP(probs, k);
  if (probs.size() == k) {
    // No overflow bucket was needed; tail is exactly Pr(S = k).
    return pmf[k];
  }
  return pmf[k];
}

namespace {

std::vector<double> DcRecurse(const std::vector<double>& probs, std::size_t lo,
                              std::size_t hi, std::size_t cap,
                              std::size_t fft_threshold) {
  if (hi - lo == 1) {
    const double p = probs[lo];
    if (cap == 0) return {1.0};  // everything is >= 0 successes
    return {1.0 - p, p};
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  std::vector<double> left = DcRecurse(probs, lo, mid, cap, fft_threshold);
  std::vector<double> right = DcRecurse(probs, mid, hi, cap, fft_threshold);
  return CappedConvolve(left, right, cap, fft_threshold);
}

}  // namespace

std::vector<double> PoissonBinomialCappedPmfDC(const std::vector<double>& probs,
                                               std::size_t cap,
                                               std::size_t fft_threshold) {
  if (probs.empty()) return {1.0};
  return CapPmf(DcRecurse(probs, 0, probs.size(), cap, fft_threshold), cap);
}

double PoissonBinomialTailDC(const std::vector<double>& probs, std::size_t k,
                             std::size_t fft_threshold) {
  if (k == 0) return 1.0;
  if (probs.size() < k) return 0.0;
  const std::vector<double> pmf =
      PoissonBinomialCappedPmfDC(probs, k, fft_threshold);
  // pmf has length min(n, k) + 1 >= k because n >= k; the last bin holds
  // Pr(S >= k).
  return pmf.size() > k ? pmf[k] : pmf.back();
}

}  // namespace ufim
