#include "prob/poisson_binomial.h"

#include <algorithm>

#include "common/math_util.h"
#include "prob/convolution.h"

namespace ufim {

SupportMoments ComputeSupportMoments(const std::vector<double>& probs) {
  KahanSum mean, var;
  for (double p : probs) {
    mean.Add(p);
    var.Add(p * (1.0 - p));
  }
  return SupportMoments{mean.value(), var.value()};
}

namespace {

// Shared DP core. Fills `pmf` (resized to top + 1) with the cap-truncated
// distribution: pmf[j] = Pr(exactly j successes so far) for j < top;
// pmf[top] = Pr(>= top) once the overflow bucket is live. When
// reject_threshold >= 0, the final overflow mass is periodically bounded
// from the partial state; once Pr(S_n >= top) is certified to be at least
// a safety margin below reject_threshold, the DP aborts, stores the bound
// in *early_bound, and returns true. Returns false after a full run.
bool TailDpCore(const std::vector<double>& probs, std::size_t top, bool capped,
                double reject_threshold, std::vector<double>& pmf,
                double* early_bound) {
  pmf.assign(top + 1, 0.0);
  pmf[0] = 1.0;
  std::size_t filled = 0;  // highest index with possibly-nonzero mass
  const std::size_t n = probs.size();
  // Margin under the caller's threshold: a completed DP differs from the
  // true tail by accumulated rounding only, so certifying with this much
  // headroom guarantees the completed evaluation would also land <= the
  // threshold — early exit can never flip a frequent/infrequent decision.
  constexpr double kAbortSlack = 1e-7;
  for (std::size_t i = 0; i < n; ++i) {
    const double p = probs[i];
    const std::size_t hi = std::min(filled + 1, top);
    for (std::size_t j = hi; j > 0; --j) {
      const bool overflow_bin = capped && j == top;
      if (overflow_bin) {
        // Overflow keeps its mass and absorbs promotions from j-1.
        pmf[j] = pmf[j] + pmf[j - 1] * p;
      } else {
        pmf[j] = pmf[j] * (1.0 - p) + pmf[j - 1] * p;
      }
    }
    pmf[0] *= (1.0 - p);
    filled = hi;
    if (reject_threshold >= 0.0 && (i & 63u) == 63u && i + 1 < n) {
      const std::size_t remaining = n - i - 1;
      if (remaining < top) {
        // Worlds gain at most one success per remaining trial, so
        // Pr(S_n >= top) <= Pr(S_i >= top - remaining).
        double reachable = 0.0;
        for (std::size_t j = top - remaining; j <= filled; ++j) {
          reachable += pmf[j];
        }
        if (reachable + kAbortSlack <= reject_threshold) {
          *early_bound = reachable;
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

std::vector<double> PoissonBinomialCappedPmfDP(const std::vector<double>& probs,
                                               std::size_t cap) {
  const std::size_t top = std::min(cap, probs.size());
  if (top == 0) return {1.0};  // cap == 0 or no trials: all mass at "via >= 0"
  std::vector<double> pmf;
  TailDpCore(probs, top, /*capped=*/probs.size() > cap,
             /*reject_threshold=*/-1.0, pmf, nullptr);
  return pmf;
}

double PoissonBinomialTailDP(const std::vector<double>& probs, std::size_t k) {
  if (k == 0) return 1.0;
  if (probs.size() < k) return 0.0;
  const std::vector<double> pmf = PoissonBinomialCappedPmfDP(probs, k);
  // The last bin holds Pr(>= k) when capped and Pr(= k) == Pr(>= k) when
  // n == k; either way index k is the tail.
  return pmf[k];
}

double PoissonBinomialTailDP(const std::vector<double>& probs, std::size_t k,
                             double reject_threshold, DpScratch& scratch) {
  if (k == 0) return 1.0;
  if (probs.size() < k) return 0.0;
  double early_bound = 0.0;
  if (TailDpCore(probs, k, /*capped=*/probs.size() > k, reject_threshold,
                 scratch.pmf, &early_bound)) {
    return early_bound;
  }
  return scratch.pmf[k];
}

namespace {

std::vector<double> DcRecurse(const std::vector<double>& probs, std::size_t lo,
                              std::size_t hi, std::size_t cap,
                              std::size_t fft_threshold) {
  if (hi - lo == 1) {
    const double p = probs[lo];
    if (cap == 0) return {1.0};  // everything is >= 0 successes
    return {1.0 - p, p};
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  std::vector<double> left = DcRecurse(probs, lo, mid, cap, fft_threshold);
  std::vector<double> right = DcRecurse(probs, mid, hi, cap, fft_threshold);
  return CappedConvolve(left, right, cap, fft_threshold);
}

}  // namespace

std::vector<double> PoissonBinomialCappedPmfDC(const std::vector<double>& probs,
                                               std::size_t cap,
                                               std::size_t fft_threshold) {
  if (probs.empty()) return {1.0};
  return CapPmf(DcRecurse(probs, 0, probs.size(), cap, fft_threshold), cap);
}

double PoissonBinomialTailDC(const std::vector<double>& probs, std::size_t k,
                             std::size_t fft_threshold) {
  if (k == 0) return 1.0;
  if (probs.size() < k) return 0.0;
  const std::vector<double> pmf =
      PoissonBinomialCappedPmfDC(probs, k, fft_threshold);
  // pmf has length min(n, k) + 1 >= k because n >= k; the last bin holds
  // Pr(S >= k).
  return pmf.size() > k ? pmf[k] : pmf.back();
}

}  // namespace ufim
