#ifndef UFIM_PROB_FFT_H_
#define UFIM_PROB_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace ufim {

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// `data.size()` must be a power of two. `inverse == true` computes the
/// unscaled inverse transform; callers divide by the length themselves
/// (FftConvolve does). Implemented from scratch — the DC algorithm (§3.2.2
/// of the paper) uses it to reach O(N log N) per itemset.
void Fft(std::vector<std::complex<double>>& data, bool inverse);

/// Real polynomial multiplication via FFT: returns c with
/// c[k] = sum_{i+j=k} a[i]*b[j], of length a.size()+b.size()-1.
/// Either input empty yields an empty result.
std::vector<double> FftConvolve(const std::vector<double>& a,
                                const std::vector<double>& b);

}  // namespace ufim

#endif  // UFIM_PROB_FFT_H_
