#ifndef UFIM_PROB_DISTANCE_H_
#define UFIM_PROB_DISTANCE_H_

#include <cstddef>
#include <vector>

namespace ufim {

/// Distances between discrete distributions over {0, 1, 2, ...} — used
/// by the approximation-quality ablation to quantify how close the
/// Normal and Poisson surrogates are to the exact Poisson-binomial
/// support distribution (the evidence behind §4.4's accuracy tables).
///
/// Shorter pmfs are implicitly zero-padded.

/// Total variation distance: (1/2) Σ |a_k - b_k| in [0, 1].
double TotalVariationDistance(const std::vector<double>& a,
                              const std::vector<double>& b);

/// Kolmogorov (sup-CDF) distance: max_k |A(k) - B(k)| in [0, 1].
double KolmogorovDistance(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Discretized Normal(mean, var) pmf on {0..len-1} via CDF differences
/// with continuity correction — the implied pmf of the §3.3.2 method.
std::vector<double> DiscretizedNormalPmf(double mean, double variance,
                                         std::size_t len);

/// Poisson(lambda) pmf on {0..len-1} — the implied pmf of §3.3.1.
std::vector<double> PoissonPmf(double lambda, std::size_t len);

}  // namespace ufim

#endif  // UFIM_PROB_DISTANCE_H_
