#ifndef UFIM_PROB_BOUND_CASCADE_H_
#define UFIM_PROB_BOUND_CASCADE_H_

#include <cstddef>

namespace ufim {

/// Certified screening of the frequent probability Pr(sup >= msc) from the
/// first two support moments alone, in O(1) — the "cheap path first" stage
/// in front of the exact O(n * msc) Poisson-binomial tail.
///
/// The interval is the intersection of three independently valid
/// two-sided envelopes:
///   1. Chernoff: the paper's Lemma 1 upper bound plus the multiplicative
///      lower-tail bound (prob/chernoff.h).
///   2. Cantelli (one-sided Chebyshev): sigma^2 / (sigma^2 + a^2) on each
///      side. Unlike the normal envelope this degrades gracefully as
///      sigma -> 0, collapsing to the exact step function at sigma == 0.
///   3. Normal approximation with a Berry-Esseen error envelope:
///      |Pr(S <= x) - Phi((x - mu)/sigma)| <= C * psi with C = 0.56
///      (Shevtsova 2010) and psi = sum E|X_i - p_i|^3 / sigma^3 <= 1/sigma
///      because sum p_i(1-p_i)(1-2p_i(1-p_i)) <= sigma^2. This certifies
///      the normal estimate rather than trusting it.
///
/// Every bound is widened by an absolute slack (1e-9) before use so that
/// floating-point error in either the bound or the exact evaluator can
/// never flip a certified decision; the result therefore satisfies
/// lower <= exact tail <= upper for any evaluator accurate to ~1e-10.
struct TailInterval {
  double lower = 0.0;
  double upper = 1.0;
};

TailInterval CertifiedTailInterval(double mean, double variance,
                                   std::size_t msc);

/// Three-way outcome of screening an interval against the frequentness
/// threshold pft (an itemset is frequent iff Pr(sup >= msc) > pft).
enum class BoundDecision {
  kReject,     ///< upper <= pft: certifiably NOT frequent
  kAccept,     ///< lower >  pft: certifiably frequent
  kUndecided,  ///< pft lies inside the residual uncertainty band
};

BoundDecision ClassifyTail(const TailInterval& interval, double pft);

}  // namespace ufim

#endif  // UFIM_PROB_BOUND_CASCADE_H_
