#include "prob/poisson.h"

#include <cmath>

namespace ufim {

namespace {

// Both the series and the continued fraction converge in O(sqrt(x))
// iterations when x is close to a (the regime mining hits with large
// databases: a = msc, x = lambda = esup); 500 iterations would silently
// lose accuracy above x ~ 1e4.
constexpr int kMaxIterations = 50000;
constexpr double kEps = 3.0e-14;
constexpr double kFpMin = 1.0e-300;

// Series representation of P(a, x), valid (fast) for x < a + 1.
double GammaPSeries(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued-fraction representation of Q(a, x), valid for x >= a + 1.
// Modified Lentz algorithm.
double GammaQContinuedFraction(double a, double x) {
  const double gln = std::lgamma(a);
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  if (x <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (x <= 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double PoissonCdf(std::size_t k, double lambda) {
  if (lambda <= 0.0) return 1.0;
  return RegularizedGammaQ(static_cast<double>(k) + 1.0, lambda);
}

double PoissonTail(std::size_t k, double lambda) {
  if (k == 0) return 1.0;
  if (lambda <= 0.0) return 0.0;
  return RegularizedGammaP(static_cast<double>(k), lambda);
}

double PoissonLambdaForTail(std::size_t msc, double pft) {
  if (msc == 0) return 0.0;
  const double m = static_cast<double>(msc);
  double lo = 0.0;
  double hi = m + 20.0 * std::sqrt(m + 1.0) + 60.0;
  // Ensure the bracket really contains the answer.
  while (PoissonTail(msc, hi) <= pft) hi *= 2.0;
  for (int i = 0; i < 200 && hi - lo > 1e-9; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (PoissonTail(msc, mid) > pft) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace ufim
