#include "prob/fft.h"

#include <cmath>

#include "common/math_util.h"

namespace ufim {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = 2.0 * kPi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        std::complex<double> u = data[i + k];
        std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<double> FftConvolve(const std::vector<double>& a,
                                const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  const std::size_t out_len = a.size() + b.size() - 1;
  const std::size_t n = NextPowerOfTwo(out_len);
  std::vector<std::complex<double>> fa(n), fb(n);
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  Fft(fa, /*inverse=*/false);
  Fft(fb, /*inverse=*/false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  Fft(fa, /*inverse=*/true);
  std::vector<double> out(out_len);
  for (std::size_t i = 0; i < out_len; ++i) {
    double v = fa[i].real() / static_cast<double>(n);
    // Probabilities cannot be negative; clip FFT round-off noise.
    out[i] = v < 0.0 ? 0.0 : v;
  }
  return out;
}

}  // namespace ufim
