#include "prob/convolution.h"

#include "prob/fft.h"

namespace ufim {

std::vector<double> NaiveConvolve(const std::vector<double>& a,
                                  const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double ai = a[i];
    if (ai == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += ai * b[j];
    }
  }
  return out;
}

std::vector<double> CapPmf(std::vector<double> pmf, std::size_t cap) {
  if (pmf.size() <= cap + 1) return pmf;
  double overflow = 0.0;
  for (std::size_t i = cap; i < pmf.size(); ++i) overflow += pmf[i];
  pmf.resize(cap + 1);
  pmf[cap] = overflow;
  return pmf;
}

std::vector<double> CappedConvolve(const std::vector<double>& a,
                                   const std::vector<double>& b,
                                   std::size_t cap,
                                   std::size_t fft_threshold) {
  std::vector<double> conv;
  if (a.size() >= fft_threshold && b.size() >= fft_threshold) {
    conv = FftConvolve(a, b);
  } else {
    conv = NaiveConvolve(a, b);
  }
  return CapPmf(std::move(conv), cap);
}

}  // namespace ufim
