#ifndef UFIM_EVAL_MEMORY_TRACKER_H_
#define UFIM_EVAL_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace ufim {

/// Process-wide heap accounting — the paper's uniform "memory cost"
/// measure (§4.1 argues that ad-hoc per-implementation measurement made
/// published results incomparable).
///
/// The counters are only driven when the `ufim_alloc_hooks` library
/// (overridden global operator new/delete) is linked into the binary;
/// the bench binaries link it, ordinary library consumers do not.
/// All functions are thread-safe (relaxed atomics) and allocation-free.
namespace memory_tracker {

/// True iff the allocation hooks are present in this binary.
bool HooksInstalled();

/// Bytes currently allocated through tracked new/delete.
std::size_t CurrentBytes();

/// High-water mark since the last ResetPeak().
std::size_t PeakBytes();

/// Total number of tracked allocations since process start.
std::uint64_t AllocationCount();

/// Sets the peak to the current usage, so a subsequent PeakBytes()
/// reports the high-water mark of the region of interest only.
void ResetPeak();

/// Internal entry points used by the allocation hooks.
void RecordAlloc(std::size_t bytes);
void RecordFree(std::size_t bytes);
void MarkHooksInstalled();

}  // namespace memory_tracker

/// RAII helper: resets the peak on construction, reports the delta-peak
/// (bytes above the starting level) on request.
class ScopedPeakMemory {
 public:
  ScopedPeakMemory();

  /// Peak bytes allocated above the construction-time level; 0 when the
  /// hooks are not linked.
  std::size_t PeakDeltaBytes() const;

 private:
  std::size_t baseline_;
};

}  // namespace ufim

#endif  // UFIM_EVAL_MEMORY_TRACKER_H_
