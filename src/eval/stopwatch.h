#ifndef UFIM_EVAL_STOPWATCH_H_
#define UFIM_EVAL_STOPWATCH_H_

#include <chrono>

namespace ufim {

/// Monotonic wall-clock stopwatch for experiment timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts timing from now.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in milliseconds.
  double ElapsedMillis() const;

  /// Elapsed time in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ufim

#endif  // UFIM_EVAL_STOPWATCH_H_
