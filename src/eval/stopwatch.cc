#include "eval/stopwatch.h"

namespace ufim {

double Stopwatch::ElapsedMillis() const {
  const auto d = Clock::now() - start_;
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace ufim
