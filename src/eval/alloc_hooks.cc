// Global operator new/delete overrides that feed ufim::memory_tracker.
//
// Linked only into binaries that opt into heap accounting (the bench
// targets). Sizes are taken from malloc_usable_size so new and delete see
// the same number without per-allocation headers.

#include <malloc.h>

#include <cstdlib>
#include <new>

#include "eval/memory_tracker.h"

namespace {

struct HooksRegistrar {
  HooksRegistrar() { ufim::memory_tracker::MarkHooksInstalled(); }
};
// Constant-initialized object with a trivial destructor; its constructor
// flips the "hooks installed" flag before main().
HooksRegistrar g_registrar;

void* TrackedAlloc(std::size_t size, std::size_t alignment) {
  void* p = alignment > alignof(std::max_align_t)
                ? std::aligned_alloc(alignment,
                                     (size + alignment - 1) / alignment * alignment)
                : std::malloc(size);
  if (p != nullptr) {
    ufim::memory_tracker::RecordAlloc(malloc_usable_size(p));
  }
  return p;
}

void TrackedFree(void* p) {
  if (p == nullptr) return;
  ufim::memory_tracker::RecordFree(malloc_usable_size(p));
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = TrackedAlloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = TrackedAlloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return TrackedAlloc(size, 0);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = TrackedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = TrackedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { TrackedFree(p); }
void operator delete[](void* p) noexcept { TrackedFree(p); }
void operator delete(void* p, std::size_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { TrackedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { TrackedFree(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { TrackedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { TrackedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  TrackedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  TrackedFree(p);
}
