#include "eval/experiment.h"

#include "eval/memory_tracker.h"
#include "eval/stopwatch.h"

namespace ufim {

namespace {

template <typename MinerT, typename ParamsT>
Result<ExperimentMeasurement> RunOne(const MinerT& miner,
                                     const UncertainDatabase& db,
                                     const ParamsT& params) {
  ScopedPeakMemory mem;
  Stopwatch watch;
  Result<MiningResult> mined = miner.Mine(db, params);
  if (!mined.ok()) return mined.status();
  ExperimentMeasurement m;
  m.millis = watch.ElapsedMillis();
  m.peak_bytes = mem.PeakDeltaBytes();
  m.algorithm = std::string(miner.name());
  m.num_frequent = mined.value().size();
  m.counters = mined.value().counters();
  m.result = std::move(mined).value();
  return m;
}

}  // namespace

Result<ExperimentMeasurement> RunExpectedExperiment(
    const ExpectedSupportMiner& miner, const UncertainDatabase& db,
    const ExpectedSupportParams& params) {
  return RunOne(miner, db, params);
}

Result<ExperimentMeasurement> RunProbabilisticExperiment(
    const ProbabilisticMiner& miner, const UncertainDatabase& db,
    const ProbabilisticParams& params) {
  return RunOne(miner, db, params);
}

}  // namespace ufim
