#include "eval/experiment.h"

#include <memory>
#include <string>
#include <utility>

#include "core/miner_registry.h"
#include "core/sharded_miner.h"
#include "eval/memory_tracker.h"
#include "eval/stopwatch.h"

namespace ufim {

namespace {

template <typename DataT>
Result<ExperimentMeasurement> RunOne(const Miner& miner, const DataT& data,
                                     const MiningTask& task) {
  ScopedPeakMemory mem;
  Stopwatch watch;
  Result<MiningResult> mined = miner.Mine(data, task);
  if (!mined.ok()) return mined.status();
  ExperimentMeasurement m;
  m.millis = watch.ElapsedMillis();
  m.peak_bytes = mem.PeakDeltaBytes();
  m.algorithm = std::string(miner.name());
  m.num_frequent = mined.value().size();
  m.counters = mined.value().counters();
  m.result = std::move(mined).value();
  return m;
}

}  // namespace

Result<ExperimentMeasurement> RunExperiment(const Miner& miner,
                                            const FlatView& view,
                                            const MiningTask& task) {
  return RunOne(miner, view, task);
}

Result<ExperimentMeasurement> RunExperiment(const Miner& miner,
                                            const UncertainDatabase& db,
                                            const MiningTask& task) {
  return RunOne(miner, db, task);
}

Result<ExperimentMeasurement> RunRegisteredExperiment(
    std::string_view algorithm, const FlatView& view, const MiningTask& task,
    const MinerOptions& options, std::size_t num_shards) {
  std::unique_ptr<Miner> miner =
      MinerRegistry::Global().Create(algorithm, options);
  if (miner == nullptr) {
    return Status::NotFound("algorithm '" + std::string(algorithm) +
                            "' is not registered");
  }
  if (num_shards > 1) {
    miner = std::make_unique<ShardedMiner>(std::move(miner), num_shards,
                                           options.num_threads);
    // The registry attached the token to the inner miner; the sharded
    // driver polls it at its own phase boundaries too. The wrapper is
    // freshly constructed, so this thread owns its config phase.
    miner->AssertConfigPhase();
    miner->set_run_context(options.run_context);
  }
  return RunExperiment(*miner, view, task);
}

Result<ExperimentMeasurement> RunExpectedExperiment(
    const ExpectedSupportMiner& miner, const UncertainDatabase& db,
    const ExpectedSupportParams& params) {
  return RunExperiment(miner, db, MiningTask(params));
}

Result<ExperimentMeasurement> RunProbabilisticExperiment(
    const ProbabilisticMiner& miner, const UncertainDatabase& db,
    const ProbabilisticParams& params) {
  return RunExperiment(miner, db, MiningTask(params));
}
}  // namespace ufim
