#include "eval/memory_tracker.h"

#include <atomic>

namespace ufim {
namespace memory_tracker {

namespace {
// Plain atomics with constant initialization (trivially destructible, per
// the style rules for objects with static storage duration).
std::atomic<std::size_t> g_current{0};
std::atomic<std::size_t> g_peak{0};
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_hooks{false};
}  // namespace

bool HooksInstalled() { return g_hooks.load(std::memory_order_relaxed); }

std::size_t CurrentBytes() { return g_current.load(std::memory_order_relaxed); }

std::size_t PeakBytes() { return g_peak.load(std::memory_order_relaxed); }

std::uint64_t AllocationCount() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void ResetPeak() {
  g_peak.store(g_current.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

void RecordAlloc(std::size_t bytes) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      g_current.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // Racy max update is fine: benches are single-threaded and the error
  // bound under races is one allocation.
  std::size_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void RecordFree(std::size_t bytes) {
  g_current.fetch_sub(bytes, std::memory_order_relaxed);
}

void MarkHooksInstalled() { g_hooks.store(true, std::memory_order_relaxed); }

}  // namespace memory_tracker

ScopedPeakMemory::ScopedPeakMemory() {
  memory_tracker::ResetPeak();
  baseline_ = memory_tracker::CurrentBytes();
}

std::size_t ScopedPeakMemory::PeakDeltaBytes() const {
  const std::size_t peak = memory_tracker::PeakBytes();
  return peak > baseline_ ? peak - baseline_ : 0;
}

}  // namespace ufim
