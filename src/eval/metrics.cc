#include "eval/metrics.h"

#include <algorithm>
#include <vector>

namespace ufim {

PrecisionRecall ComputePrecisionRecall(const MiningResult& approx,
                                       const MiningResult& exact) {
  const std::vector<Itemset> ar = approx.ItemsetsOnly();
  const std::vector<Itemset> er = exact.ItemsetsOnly();
  std::vector<Itemset> common;
  std::set_intersection(ar.begin(), ar.end(), er.begin(), er.end(),
                        std::back_inserter(common));
  PrecisionRecall pr;
  pr.approx_size = ar.size();
  pr.exact_size = er.size();
  pr.intersection = common.size();
  pr.precision = ar.empty()
                     ? 1.0
                     : static_cast<double>(common.size()) /
                           static_cast<double>(ar.size());
  pr.recall = er.empty() ? 1.0
                         : static_cast<double>(common.size()) /
                               static_cast<double>(er.size());
  return pr;
}

}  // namespace ufim
