#ifndef UFIM_EVAL_METRICS_H_
#define UFIM_EVAL_METRICS_H_

#include <cstddef>

#include "core/mining_result.h"

namespace ufim {

/// Set-level accuracy of an approximate mining result against an exact
/// one, the measure of the paper's Tables 8 and 9:
///   precision = |AR ∩ ER| / |AR|,  recall = |AR ∩ ER| / |ER|.
/// Empty denominators yield 1.0 (no opportunity for error).
struct PrecisionRecall {
  double precision = 1.0;
  double recall = 1.0;
  std::size_t approx_size = 0;   ///< |AR|
  std::size_t exact_size = 0;    ///< |ER|
  std::size_t intersection = 0;  ///< |AR ∩ ER|
};

PrecisionRecall ComputePrecisionRecall(const MiningResult& approx,
                                       const MiningResult& exact);

}  // namespace ufim

#endif  // UFIM_EVAL_METRICS_H_
