#ifndef UFIM_EVAL_EXPERIMENT_H_
#define UFIM_EVAL_EXPERIMENT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "core/flat_view.h"
#include "core/miner.h"
#include "core/mining_result.h"
#include "core/uncertain_database.h"

namespace ufim {

/// One timed + memory-tracked mining run: the row format shared by every
/// figure-reproduction bench.
struct ExperimentMeasurement {
  std::string algorithm;
  double millis = 0.0;
  std::size_t peak_bytes = 0;  ///< 0 when the alloc hooks are not linked
  std::size_t num_frequent = 0;
  MiningCounters counters;
  MiningResult result;  ///< full result, for accuracy post-processing
};

/// Runs `miner` once on `task` under the stopwatch and the peak-memory
/// scope. The view overload excludes FlatView construction from the
/// timing (the view is built once per sweep); the database overload
/// times it as part of the run.
Result<ExperimentMeasurement> RunExperiment(const Miner& miner,
                                            const FlatView& view,
                                            const MiningTask& task);
Result<ExperimentMeasurement> RunExperiment(const Miner& miner,
                                            const UncertainDatabase& db,
                                            const MiningTask& task);

/// Registry-driven variant: instantiates `algorithm` with `options`
/// (the experiment-runner config — num_threads and the per-algorithm
/// knobs) and optionally wraps it in a ShardedMiner (`num_shards > 1`)
/// before running. NotFound for unregistered names. This is the single
/// entry point the CLI and sweep drivers use, so every experiment
/// accepts the same execution configuration.
Result<ExperimentMeasurement> RunRegisteredExperiment(
    std::string_view algorithm, const FlatView& view, const MiningTask& task,
    const MinerOptions& options = {}, std::size_t num_shards = 1);

/// Typed conveniences retained for the per-definition sweeps.
Result<ExperimentMeasurement> RunExpectedExperiment(
    const ExpectedSupportMiner& miner, const UncertainDatabase& db,
    const ExpectedSupportParams& params);

Result<ExperimentMeasurement> RunProbabilisticExperiment(
    const ProbabilisticMiner& miner, const UncertainDatabase& db,
    const ProbabilisticParams& params);

}  // namespace ufim

#endif  // UFIM_EVAL_EXPERIMENT_H_
