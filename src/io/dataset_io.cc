#include "io/dataset_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace ufim {

std::string FormatTransactionLine(const Transaction& t) {
  std::string out;
  char buf[64];
  for (std::size_t i = 0; i < t.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%u:%.17g", i == 0 ? "" : " ",
                  t[i].item, t[i].prob);
    out += buf;
  }
  return out;
}

Result<Transaction> ParseTransactionLine(const std::string& line) {
  std::vector<ProbItem> units;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= token.size()) {
      return Status::InvalidArgument("malformed unit '" + token +
                                     "' (expected item:prob)");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long item = std::strtoul(token.c_str(), &end, 10);
    if (errno != 0 || end != token.c_str() + colon) {
      return Status::InvalidArgument("malformed item id in '" + token + "'");
    }
    errno = 0;
    const double prob = std::strtod(token.c_str() + colon + 1, &end);
    if (errno != 0 || end != token.c_str() + token.size()) {
      return Status::InvalidArgument("malformed probability in '" + token + "'");
    }
    if (prob < 0.0 || prob > 1.0) {
      return Status::InvalidArgument("probability out of [0,1] in '" + token +
                                     "'");
    }
    units.push_back(ProbItem{static_cast<ItemId>(item), prob});
  }
  return Transaction(std::move(units));
}

Status WriteDataset(const UncertainDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  for (const Transaction& t : db) {
    out << FormatTransactionLine(t) << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

Result<UncertainDatabase> ReadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::vector<Transaction> txns;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    Result<Transaction> t = ParseTransactionLine(line);
    if (!t.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     t.status().message());
    }
    txns.push_back(std::move(t).value());
  }
  return UncertainDatabase(std::move(txns));
}

}  // namespace ufim
