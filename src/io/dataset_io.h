#ifndef UFIM_IO_DATASET_IO_H_
#define UFIM_IO_DATASET_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/uncertain_database.h"

namespace ufim {

/// Text format for uncertain databases, one transaction per line:
///
///   item:prob item:prob ...
///
/// e.g. `0:0.8 1:0.2 2:0.9`. Blank lines and lines starting with '#' are
/// skipped. This is the interchange format for all examples and tools.

/// Writes `db` to `path`. Overwrites an existing file.
Status WriteDataset(const UncertainDatabase& db, const std::string& path);

/// Reads a database from `path`. Malformed units produce InvalidArgument
/// with a line number; I/O failures produce IOError.
Result<UncertainDatabase> ReadDataset(const std::string& path);

/// Serializes/parses a single transaction line (exposed for tests).
std::string FormatTransactionLine(const Transaction& t);
Result<Transaction> ParseTransactionLine(const std::string& line);

}  // namespace ufim

#endif  // UFIM_IO_DATASET_IO_H_
