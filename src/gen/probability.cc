#include "gen/probability.h"

#include <cmath>

#include "common/rng.h"

namespace ufim {

UncertainDatabase AssignGaussianProbabilities(const DeterministicDatabase& det,
                                              double mean, double variance,
                                              std::uint64_t seed) {
  Rng rng(seed);
  const double stddev = std::sqrt(variance > 0.0 ? variance : 0.0);
  std::vector<Transaction> transactions;
  transactions.reserve(det.size());
  for (const std::vector<ItemId>& items : det) {
    std::vector<ProbItem> units;
    units.reserve(items.size());
    for (ItemId id : items) {
      double p = rng.Gaussian(mean, stddev);
      // Resample out-of-range draws a few times, then clamp: keeps the
      // distribution close to the truncated Gaussian without risking an
      // unbounded loop at extreme parameters.
      for (int tries = 0; (p <= 0.0 || p > 1.0) && tries < 16; ++tries) {
        p = rng.Gaussian(mean, stddev);
      }
      if (p > 1.0) p = 1.0;
      if (p <= 0.0) p = 0.001;
      units.push_back(ProbItem{id, p});
    }
    transactions.emplace_back(std::move(units));
  }
  return UncertainDatabase(std::move(transactions));
}

UncertainDatabase AssignZipfProbabilities(const DeterministicDatabase& det,
                                          double skew, std::uint64_t seed,
                                          unsigned num_levels) {
  Rng rng(seed);
  std::vector<Transaction> transactions;
  transactions.reserve(det.size());
  for (const std::vector<ItemId>& items : det) {
    std::vector<ProbItem> units;
    units.reserve(items.size());
    for (ItemId id : items) {
      const std::uint64_t rank = rng.Zipf(num_levels + 1, skew);
      if (rank == 1) continue;  // probability 0: the unit is dropped
      const double p =
          static_cast<double>(rank - 1) / static_cast<double>(num_levels);
      units.push_back(ProbItem{id, p});
    }
    transactions.emplace_back(std::move(units));
  }
  return UncertainDatabase(std::move(transactions));
}

}  // namespace ufim
