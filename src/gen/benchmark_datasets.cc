#include "gen/benchmark_datasets.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.h"
#include "gen/quest_generator.h"

namespace ufim {

namespace {

/// Builds per-item inclusion weights w_i ∝ (i+1)^-skew over `num_items`.
std::vector<double> PowerLawWeights(std::size_t num_items, double skew) {
  std::vector<double> w(num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    w[i] = std::pow(static_cast<double>(i + 1), -skew);
  }
  return w;
}

/// Draws a transaction of exactly `len` distinct items with probability
/// proportional to `weights` (rejection over a cumulative table).
std::vector<ItemId> WeightedDistinctDraw(const std::vector<double>& cumulative,
                                         std::size_t len, Rng& rng) {
  std::unordered_set<ItemId> chosen;
  const double total = cumulative.back();
  while (chosen.size() < len) {
    const double u = rng.Uniform01() * total;
    const std::size_t idx = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    chosen.insert(static_cast<ItemId>(idx));
  }
  std::vector<ItemId> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<double> CumulativeOf(const std::vector<double>& w) {
  std::vector<double> c;
  c.reserve(w.size());
  double acc = 0.0;
  for (double x : w) {
    acc += x;
    c.push_back(acc);
  }
  return c;
}

/// Common generator: Poisson-length transactions over a power-law item
/// popularity. The (num_items, avg_len, popularity skew) triple controls
/// the density regime.
DeterministicDatabase PowerLawDatabase(std::size_t num_transactions,
                                       std::size_t num_items, double avg_len,
                                       double skew, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<double> cumulative =
      CumulativeOf(PowerLawWeights(num_items, skew));
  DeterministicDatabase db(num_transactions);
  for (std::vector<ItemId>& txn : db) {
    std::size_t len = std::max<std::size_t>(1, rng.Poisson(avg_len));
    len = std::min(len, num_items);
    txn = WeightedDistinctDraw(cumulative, len, rng);
  }
  return db;
}

}  // namespace

DeterministicDatabase MakeConnectLike(std::size_t num_transactions,
                                      std::uint64_t seed) {
  // Fixed length 43 of 129 items; mild skew keeps a core of ~60 items
  // near-universal, reproducing Connect's extreme overlap.
  Rng rng(seed);
  const std::vector<double> cumulative =
      CumulativeOf(PowerLawWeights(129, 0.9));
  DeterministicDatabase db(num_transactions);
  for (std::vector<ItemId>& txn : db) {
    txn = WeightedDistinctDraw(cumulative, 43, rng);
  }
  return db;
}

DeterministicDatabase MakeAccidentLike(std::size_t num_transactions,
                                       std::uint64_t seed) {
  return PowerLawDatabase(num_transactions, 468, 33.8, 0.8, seed);
}

DeterministicDatabase MakeKosarakLike(std::size_t num_transactions,
                                      std::uint64_t seed,
                                      std::size_t num_items) {
  // Click streams: Zipfian popularity, short transactions. Skew 1.0 puts
  // the most popular item in ~60% of transactions, matching the real
  // Kosarak's most frequent item (~0.61 relative support).
  return PowerLawDatabase(num_transactions, num_items, 8.1, 1.0, seed);
}

DeterministicDatabase MakeGazelleLike(std::size_t num_transactions,
                                      std::uint64_t seed) {
  return PowerLawDatabase(num_transactions, 498, 2.5, 1.0, seed);
}

Result<DeterministicDatabase> MakeQuestT25I15(std::size_t num_transactions,
                                              std::uint64_t seed) {
  QuestConfig cfg;
  cfg.num_transactions = num_transactions;
  cfg.avg_transaction_len = 25.0;
  cfg.avg_pattern_len = 15.0;
  cfg.num_items = 994;
  cfg.num_patterns = 1000;
  return GenerateQuest(cfg, seed);
}

UncertainDatabase MakePaperTable1() {
  std::vector<Transaction> txns;
  txns.emplace_back(std::vector<ProbItem>{{kItemA, 0.8},
                                          {kItemB, 0.2},
                                          {kItemC, 0.9},
                                          {kItemD, 0.7},
                                          {kItemF, 0.8}});
  txns.emplace_back(std::vector<ProbItem>{
      {kItemA, 0.8}, {kItemB, 0.7}, {kItemC, 0.9}, {kItemE, 0.5}});
  txns.emplace_back(std::vector<ProbItem>{
      {kItemA, 0.5}, {kItemC, 0.8}, {kItemE, 0.8}, {kItemF, 0.3}});
  txns.emplace_back(
      std::vector<ProbItem>{{kItemB, 0.5}, {kItemD, 0.5}, {kItemF, 0.7}});
  return UncertainDatabase(std::move(txns));
}

}  // namespace ufim
