#ifndef UFIM_GEN_BENCHMARK_DATASETS_H_
#define UFIM_GEN_BENCHMARK_DATASETS_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "core/uncertain_database.h"
#include "gen/probability.h"

namespace ufim {

/// Synthetic stand-ins for the paper's FIMI benchmark datasets (Table 6).
///
/// The FIMI repository originals are not available offline, so each
/// family reproduces the published *shape* — item-universe size, average
/// transaction length, density, and popularity skew — which is what every
/// dense-vs-sparse conclusion in the paper is keyed to (see DESIGN.md §3).
/// Transaction counts are configurable so experiments can be scaled to
/// the host; the paper's counts are the documented defaults' provenance:
///
///   Connect   67,557 txns | 129 items    | avg len 43   | density 0.33
///   Accident  340,183     | 468 items    | avg len 33.8 | density 0.072
///   Kosarak   990,002     | 41,270 items | avg len 8.1  | density 0.00019
///   Gazelle   59,601      | 498 items    | avg len 2.5  | density 0.005
///
/// All generators are deterministic in `seed`.

/// Dense, fixed-length (43 of 129 items) game-state-like transactions:
/// highly overlapping popular items, the regime where UApriori wins.
DeterministicDatabase MakeConnectLike(std::size_t num_transactions,
                                      std::uint64_t seed);

/// Dense-ish traffic-accident-like transactions: 468 items, Poisson
/// length around 33.8, moderately skewed popularity.
DeterministicDatabase MakeAccidentLike(std::size_t num_transactions,
                                       std::uint64_t seed);

/// Sparse click-stream-like transactions: large item universe (scaled to
/// `num_items`, default shape 41,270), Zipf-popular items, avg len 8.1.
DeterministicDatabase MakeKosarakLike(std::size_t num_transactions,
                                      std::uint64_t seed,
                                      std::size_t num_items = 4096);

/// Very sparse web-purchase-like transactions: 498 items, avg len 2.5.
DeterministicDatabase MakeGazelleLike(std::size_t num_transactions,
                                      std::uint64_t seed);

/// The Quest T25I15 family used for scalability (994 items, T=25, I=15).
Result<DeterministicDatabase> MakeQuestT25I15(std::size_t num_transactions,
                                              std::uint64_t seed);

/// The paper's running example (Table 1): 4 transactions over items
/// A..F mapped to ids 0..5. Ground truth for unit tests and examples.
UncertainDatabase MakePaperTable1();

/// Item ids of the Table 1 example, for readable tests.
inline constexpr ItemId kItemA = 0;
inline constexpr ItemId kItemB = 1;
inline constexpr ItemId kItemC = 2;
inline constexpr ItemId kItemD = 3;
inline constexpr ItemId kItemE = 4;
inline constexpr ItemId kItemF = 5;

}  // namespace ufim

#endif  // UFIM_GEN_BENCHMARK_DATASETS_H_
