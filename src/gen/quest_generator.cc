#include "gen/quest_generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/rng.h"

namespace ufim {

namespace {

struct Pattern {
  std::vector<ItemId> items;
  double weight = 0.0;
  double corruption = 0.0;
};

std::vector<Pattern> BuildPatterns(const QuestConfig& cfg, Rng& rng) {
  std::vector<Pattern> patterns(cfg.num_patterns);
  std::vector<ItemId> prev;
  double weight_sum = 0.0;
  for (Pattern& pat : patterns) {
    std::size_t len = std::max<std::size_t>(1, rng.Poisson(cfg.avg_pattern_len));
    len = std::min(len, cfg.num_items);
    std::unordered_set<ItemId> chosen;
    // Inherit a correlated fraction from the previous pattern.
    if (!prev.empty()) {
      for (ItemId id : prev) {
        if (chosen.size() >= len) break;
        if (rng.Bernoulli(cfg.correlation)) chosen.insert(id);
      }
    }
    while (chosen.size() < len) {
      chosen.insert(static_cast<ItemId>(rng.UniformInt(0, cfg.num_items - 1)));
    }
    pat.items.assign(chosen.begin(), chosen.end());
    std::sort(pat.items.begin(), pat.items.end());
    pat.weight = rng.Exponential(1.0);
    weight_sum += pat.weight;
    double corr = rng.Gaussian(cfg.corruption_mean, 0.1);
    pat.corruption = corr < 0.0 ? 0.0 : (corr > 0.9 ? 0.9 : corr);
    prev = pat.items;
  }
  for (Pattern& pat : patterns) pat.weight /= weight_sum;
  return patterns;
}

// Weighted pattern index sampler (cumulative table + binary search).
class PatternSampler {
 public:
  explicit PatternSampler(const std::vector<Pattern>& patterns) {
    cumulative_.reserve(patterns.size());
    double acc = 0.0;
    for (const Pattern& p : patterns) {
      acc += p.weight;
      cumulative_.push_back(acc);
    }
  }

  std::size_t Sample(Rng& rng) const {
    const double u = rng.Uniform01() * cumulative_.back();
    return static_cast<std::size_t>(
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u) -
        cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

}  // namespace

Result<DeterministicDatabase> GenerateQuest(const QuestConfig& cfg,
                                            std::uint64_t seed) {
  if (cfg.num_items == 0 || cfg.num_patterns == 0) {
    return Status::InvalidArgument("quest: num_items and num_patterns must be > 0");
  }
  if (cfg.avg_transaction_len <= 0.0 || cfg.avg_pattern_len <= 0.0) {
    return Status::InvalidArgument("quest: average lengths must be positive");
  }
  if (cfg.avg_pattern_len > static_cast<double>(cfg.num_items)) {
    return Status::InvalidArgument("quest: avg_pattern_len exceeds num_items");
  }
  Rng rng(seed);
  const std::vector<Pattern> patterns = BuildPatterns(cfg, rng);
  const PatternSampler sampler(patterns);

  DeterministicDatabase db(cfg.num_transactions);
  for (std::vector<ItemId>& txn : db) {
    const std::size_t target =
        std::max<std::size_t>(1, rng.Poisson(cfg.avg_transaction_len));
    std::unordered_set<ItemId> chosen;
    // Guard against pathological configs that cannot reach the target.
    for (int picks = 0; chosen.size() < target && picks < 64; ++picks) {
      const Pattern& pat = patterns[sampler.Sample(rng)];
      // Corrupt: drop a geometric number of items from the pattern.
      std::vector<ItemId> kept = pat.items;
      while (!kept.empty() && rng.Uniform01() < pat.corruption) {
        kept.erase(kept.begin() +
                   static_cast<std::ptrdiff_t>(rng.UniformInt(0, kept.size() - 1)));
      }
      if (chosen.size() + kept.size() > target + target / 2 &&
          !rng.Bernoulli(0.5)) {
        continue;  // classic Quest rule: half the oversized picks are deferred
      }
      chosen.insert(kept.begin(), kept.end());
    }
    txn.assign(chosen.begin(), chosen.end());
    std::sort(txn.begin(), txn.end());
  }
  return db;
}

}  // namespace ufim
