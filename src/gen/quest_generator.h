#ifndef UFIM_GEN_QUEST_GENERATOR_H_
#define UFIM_GEN_QUEST_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "gen/probability.h"

namespace ufim {

/// Configuration of the IBM Quest synthetic market-basket generator
/// (Agrawal & Srikant, VLDB '94), re-implemented from scratch. The
/// dataset name T{T}I{I}D{D} encodes avg_transaction_len=T,
/// avg_pattern_len=I, num_transactions=D. The paper's scalability series
/// is T25I15D320k with 994 items (Table 6).
struct QuestConfig {
  std::size_t num_transactions = 10000;   ///< D
  double avg_transaction_len = 25.0;      ///< T
  double avg_pattern_len = 15.0;          ///< I
  std::size_t num_items = 994;
  std::size_t num_patterns = 1000;        ///< |L|, # maximal potential itemsets
  double correlation = 0.5;   ///< fraction of a pattern copied from its predecessor
  double corruption_mean = 0.5;  ///< mean corruption level per pattern
};

/// Generates a deterministic database following the Quest process:
///  1. Build L potential frequent patterns: sizes ~ Poisson(I); items
///     partly inherited from the previous pattern (correlation), the rest
///     uniform; each pattern has an exponential weight and a corruption
///     level ~ clamped Normal(corruption_mean, 0.1).
///  2. Each transaction draws its size ~ Poisson(T) and is filled by
///     weighted pattern picks; each pattern is corrupted by dropping
///     items while Uniform01 < corruption level; oversized picks are
///     kept with probability 1/2 (classic rule), otherwise deferred.
///
/// Returns InvalidArgument for degenerate configurations.
Result<DeterministicDatabase> GenerateQuest(const QuestConfig& config,
                                            std::uint64_t seed);

}  // namespace ufim

#endif  // UFIM_GEN_QUEST_GENERATOR_H_
