#ifndef UFIM_GEN_PROBABILITY_H_
#define UFIM_GEN_PROBABILITY_H_

#include <cstdint>
#include <vector>

#include "core/uncertain_database.h"
#include "core/types.h"

namespace ufim {

/// A deterministic transaction database: the FIMI-style input to which a
/// probability assigner adds existential probabilities (the standard way
/// the community builds uncertain benchmarks — paper §4.1).
using DeterministicDatabase = std::vector<std::vector<ItemId>>;

/// Assigns each item occurrence an independent probability drawn from
/// Gaussian(mean, variance), resampled (up to a bounded number of tries,
/// then clamped) into (0, 1]. This reproduces the paper's four Gaussian
/// scenarios (Table 7: mean/variance 0.95/0.05, 0.5/0.5, 0.9/0.1).
UncertainDatabase AssignGaussianProbabilities(const DeterministicDatabase& det,
                                              double mean, double variance,
                                              std::uint64_t seed);

/// Assigns probabilities via the Zipf level model: a level k is drawn
/// from Zipf(skew) over ranks {1, ..., num_levels + 1}; rank 1 maps to
/// probability 0 (the occurrence is dropped) and rank r > 1 maps to
/// probability (r - 1) / num_levels. Higher skew concentrates mass on
/// rank 1, i.e. "more items are assigned the zero probability with the
/// increase of the skew" (paper §4.2), which thins the frequent itemsets.
UncertainDatabase AssignZipfProbabilities(const DeterministicDatabase& det,
                                          double skew, std::uint64_t seed,
                                          unsigned num_levels = 10);

}  // namespace ufim

#endif  // UFIM_GEN_PROBABILITY_H_
